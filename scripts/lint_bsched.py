#!/usr/bin/env python3
"""Project lint: repo-specific rules no generic tool knows.

Usage:
  lint_bsched.py [--root DIR]     lint the tree (exit 1 on findings)
  lint_bsched.py --self-test      run the lint's own unit tests

Rules (see README "Correctness tooling"):

  no-io             src/ library code must not write to the process's
                    stdout/stderr (std::cout/std::cerr/std::clog/printf/
                    fprintf/puts). Reporting goes through returned values
                    or caller-supplied std::ostream&/std::ostream* sinks;
                    only tools/, examples/, bench/ own the terminal.
                    Allowlisted: src/util/error.cpp (the BSCHED_ASSERT
                    abort path must print before dying).

  require-prefix    require() messages that start with a string literal
                    must be prefixed "<origin>: " where <origin> names
                    the throwing module — the file's directory ("net:"),
                    its stem ("spec:"), or a function/class defined in
                    the file ("plan_shards:", "csv_writer:", "round
                    robin:") — so a thrown bsched::error names its
                    source without a stack trace, and a rename cannot
                    leave a stale or foreign prefix behind.

  rng-discipline    no rand()/srand()/time()/clock()/std::random_device/
                    std::mt19937 outside src/util/rng.* — all randomness
                    derives from explicit seeds (util/rng.hpp) or the
                    determinism contract ("byte-identical for any thread
                    count") silently dies.

  pragma-once       every header (src/, tools/, tests/, bench/) carries
                    #pragma once.

  version-literal   wire-format version strings ("bsched-shard",
                    "bsched-sweep", "bsched-msg", "bsched-telemetry")
                    appear in exactly one owning codec file each
                    (src/dist/codec.cpp, src/net/message.cpp,
                    src/obs/telemetry.cpp) — in src/ and tools/, nothing
                    else may embed them, so a version bump cannot miss a
                    stray literal. tests/ may forge foreign versions in
                    negative tests. The match set derives from
                    VERSION_OWNERS, so adding a format means adding its
                    owner here and nothing else.

  obs-discipline    instrumentation goes through the BSCHED_* macros of
                    obs/obs.hpp (which compile away under
                    BSCHED_OBS=OFF): outside src/obs/, library and tool
                    code must not name obs::detail — a direct handle or
                    span would survive an obs-off build and break the
                    zero-overhead guarantee. tests/ may poke the detail
                    layer (reading-side white-box tests).

  thread-discipline library code must not spawn raw threads (std::thread/
                    std::jthread construction, std::async) outside the
                    two budgeted layers: src/util (the work-stealing
                    task_pool and the process thread_budget) and
                    src/api/engine* (the sweep worker pool, which leases
                    its width from that budget). A policy or kernel that
                    spawned its own threads would bypass the
                    oversubscription accounting and the determinism
                    contract. `std::thread::hardware_concurrency()` and
                    other static members stay fine anywhere.
"""

import argparse
import os
import re
import sys

LINT_DIRS = ("src", "tools", "tests", "bench")

IO_ALLOWLIST = {os.path.join("src", "util", "error.cpp")}

IO_PATTERN = re.compile(
    r"std::(?:cout|cerr|clog)\b|(?<![\w:])(?:printf|puts)\s*\(|"
    r"(?<![\w:])fprintf\s*\(")

RNG_PATTERN = re.compile(
    r"(?<![\w:])(?:rand|srand|time|clock)\s*\(|"
    r"std::random_device|std::mt19937")

VERSION_OWNERS = {
    "bsched-shard": os.path.join("src", "dist", "codec.cpp"),
    "bsched-sweep": os.path.join("src", "dist", "codec.cpp"),
    "bsched-msg": os.path.join("src", "net", "message.cpp"),
    "bsched-telemetry": os.path.join("src", "obs", "telemetry.cpp"),
}

# Built from VERSION_OWNERS so a new wire format only needs its owner
# registered above.
VERSION_PATTERN = re.compile(
    r'"[^"\n]*bsched-(' +
    "|".join(sorted(k.removeprefix("bsched-") for k in VERSION_OWNERS)) +
    r')[^"\n]*"')

OBS_DETAIL_PATTERN = re.compile(r"\bobs\s*::\s*detail\b")

# std::thread/std::jthread not followed by '::' (static members like
# hardware_concurrency are not a spawn), plus std::async.
THREAD_PATTERN = re.compile(r"std::j?thread\b(?!\s*::)|std::async\b")

THREAD_ALLOW_PREFIXES = (
    os.path.join("src", "util") + os.sep,
    os.path.join("src", "api", "engine"),
)



def strip_comments(text):
    """Blanks comments (preserving newlines) so code rules don't fire on
    prose; string literals are left intact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                out.append(text[i])
                if text[i] == "\\":
                    if i + 1 < n:
                        out.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_strings(text):
    """Blanks string/char literal contents (on comment-stripped text) so
    identifier rules don't fire inside messages."""
    return re.sub(r'"(?:[^"\\\n]|\\.)*"', '""', text)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def split_require_args(code, start):
    """`start` points just past 'require('. Returns the argument list
    split at top-level commas, or None when the call never closes."""
    depth = 1
    args, current = [], []
    i, n = start, len(code)
    while i < n:
        c = code[i]
        if c == '"':
            current.append(c)
            i += 1
            while i < n:
                current.append(code[i])
                if code[i] == "\\":
                    if i + 1 < n:
                        current.append(code[i + 1])
                    i += 2
                    continue
                if code[i] == '"':
                    i += 1
                    break
                i += 1
            continue
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return args
        elif c == "," and depth == 1:
            args.append("".join(current))
            current = []
            i += 1
            continue
        current.append(c)
        i += 1
    return None


def check_no_io(rel, code):
    if rel in IO_ALLOWLIST or not rel.startswith("src" + os.sep):
        return []
    findings = []
    for m in IO_PATTERN.finditer(strip_strings(code)):
        findings.append((line_of(code, m.start()), "no-io",
                         f"library code writes to stdout/stderr "
                         f"('{m.group().strip()}'); return values or take "
                         f"an std::ostream sink"))
    return findings


def origin_tag(text):
    """The "<origin>" of a message literal: everything before the first
    ':' when one appears early, else the first word (messages like
    "spec '" are the leading fragment of a concatenation)."""
    colon = text.find(":")
    if 0 < colon <= 40:
        return text[:colon]
    word = re.match(r"[^ ']+", text)
    return word.group() if word else text


def check_require_prefix(rel, code):
    if not rel.startswith("src" + os.sep):
        return []
    parts = rel.split(os.sep)
    stem = os.path.splitext(parts[-1])[0]
    module = parts[1] if len(parts) > 2 else stem
    identifiers = strip_strings(code)
    findings = []
    for m in re.finditer(r"(?<![\w:.])require\s*\(", code):
        args = split_require_args(code, m.end())
        if args is None or len(args) < 2:
            continue
        msg = args[1].strip()
        lit = re.match(r'"((?:[^"\\]|\\.)*)"', msg)
        if lit is None:
            continue  # message built from a variable; out of scope
        text = lit.group(1)
        tag = origin_tag(text)
        # Normalize display forms ("round robin", "best-of-n",
        # "dist::codec") to identifier shape, then accept the module
        # directory, the file stem, or any identifier in this file that
        # the tag is a \b-anchored prefix of ("plan_shard" -> matches
        # plan_shards; "fixed" -> matches fixed_schedule).
        norm = tag.replace("-", "_").replace(" ", "_").split("::")[0]
        ok = (re.fullmatch(r"[a-z][a-z0-9_]*", norm) is not None and
              (norm in (module, stem) or
               re.search(r"\b" + re.escape(norm), identifiers) is not None))
        if not ok:
            findings.append(
                (line_of(code, m.start()), "require-prefix",
                 f"require() message '{text[:40]}' must start with "
                 f"\"<origin>: \" naming this module ('{module}', "
                 f"'{stem}', or a function/class defined here)"))
    return findings


def check_rng(rel, code):
    if not rel.startswith("src" + os.sep):
        return []
    if os.path.splitext(rel)[0] == os.path.join("src", "util", "rng"):
        return []
    findings = []
    for m in RNG_PATTERN.finditer(strip_strings(code)):
        findings.append((line_of(code, m.start()), "rng-discipline",
                         f"'{m.group().strip()}' bypasses util/rng — all "
                         f"randomness/time must come from explicit seeds"))
    return findings


def check_pragma_once(rel, code):
    if not rel.endswith(".hpp"):
        return []
    if re.search(r"^#pragma once\s*$", code, re.MULTILINE):
        return []
    return [(1, "pragma-once", "header is missing '#pragma once'")]


def check_version_literals(rel, code):
    if not (rel.startswith("src" + os.sep) or
            rel.startswith("tools" + os.sep)):
        return []
    findings = []
    for m in VERSION_PATTERN.finditer(code):
        owner = VERSION_OWNERS["bsched-" + m.group(1)]
        if rel != owner:
            findings.append(
                (line_of(code, m.start()), "version-literal",
                 f"wire version string {m.group()} belongs only in its "
                 f"owning codec file {owner}"))
    return findings


def check_threads(rel, code):
    if not rel.startswith("src" + os.sep):
        return []
    if rel.startswith(THREAD_ALLOW_PREFIXES):
        return []
    findings = []
    for m in THREAD_PATTERN.finditer(strip_strings(code)):
        findings.append((line_of(code, m.start()), "thread-discipline",
                         f"'{m.group().strip()}' spawns outside the budgeted "
                         f"pools — go through util::task_pool / "
                         f"util::thread_budget (src/util) or the engine "
                         f"sweep pool (src/api/engine*)"))
    return findings


def check_obs_detail(rel, code):
    if not (rel.startswith("src" + os.sep) or
            rel.startswith("tools" + os.sep)):
        return []
    if rel.startswith(os.path.join("src", "obs") + os.sep):
        return []
    findings = []
    for m in OBS_DETAIL_PATTERN.finditer(strip_strings(code)):
        findings.append(
            (line_of(code, m.start()), "obs-discipline",
             "direct obs::detail use outside src/obs — instrument through "
             "the BSCHED_* macros of obs/obs.hpp so the site compiles away "
             "under BSCHED_OBS=OFF"))
    return findings


CODE_CHECKS = (check_no_io, check_require_prefix, check_rng,
               check_version_literals, check_threads, check_obs_detail)


def lint_file(rel, text):
    code = strip_comments(text)
    findings = []
    for check in CODE_CHECKS:
        findings.extend(check(rel, code))
    findings.extend(check_pragma_once(rel, text))
    return findings


def lint_tree(root):
    findings = []
    count = 0
    for top in LINT_DIRS:
        for dirpath, _, names in sorted(os.walk(os.path.join(root, top))):
            for name in sorted(names):
                if not name.endswith((".cpp", ".hpp")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8", errors="surrogateescape") \
                        as f:
                    text = f.read()
                count += 1
                for line, rule, msg in lint_file(rel, text):
                    findings.append(f"{rel}:{line}: {rule}: {msg}")
    return findings, count


# --- self-test ---------------------------------------------------------------

def self_test():
    def rules(rel, text):
        return sorted({rule for _, rule, _ in lint_file(rel, text)})

    cases = [
        # (name, path, content, expected rules)
        ("cout in library code",
         "src/api/engine.cpp", 'void f() { std::cout << "x"; }\n#pragma once',
         ["no-io"]),
        ("cout in a tool is fine",
         "tools/sweep_merge.cpp", 'void f() { std::cout << "x"; }', []),
        ("cout in a comment is fine",
         "src/api/engine.cpp", "// std::cout is forbidden here\n", []),
        ("printf in a string literal is fine",
         "src/api/engine.cpp", 'const char* s = "printf(%d)";', []),
        ("allowlisted abort path",
         "src/util/error.cpp", 'void g() { fprintf(stderr, "boom"); }', []),
        ("snprintf to a buffer is fine",
         "src/exp/report.cpp", "void f() { std::snprintf(b, n, \"%f\", v); }",
         []),
        ("require with module prefix",
         "src/net/message.cpp",
         'void f() { require(ok, "net: bad frame"); }', []),
        ("require with file-stem prefix",
         "src/api/sweep.cpp",
         'void f() { require(ok, "sweep: needs cells"); }', []),
        ("require with a function-name prefix",
         "src/dist/shard.cpp",
         'void plan_shards() { require(ok, "plan_shards: need one"); }',
         []),
        ("require with a display-form prefix matching a class",
         "src/sched/policy.cpp",
         'class best_of_n_policy {};\n'
         'void f() { require(ok, "best-of-n: all batteries empty"); }', []),
        ("require prefix naming another module",
         "src/kibam/bank.cpp",
         'void f() { require(ok, "plan_shards: foreign prefix"); }',
         ["require-prefix"]),
        ("require with a leading-fragment literal",
         "src/util/spec.cpp",
         'void f() { require(ok, "spec \'" + name + "\': boom"); }', []),
        ("require without prefix",
         "src/net/message.cpp", 'void f() { require(ok, "bad frame"); }',
         ["require-prefix"]),
        ("require with a foreign prefix",
         "src/net/message.cpp", 'void f() { require(ok, "svc: bad"); }',
         ["require-prefix"]),
        ("require message from variable is out of scope",
         "src/net/message.cpp", "void f() { require(ok, msg); }", []),
        ("literal in the condition is not the message",
         "src/svc/worker.cpp",
         'void f() { require(t == "sweep", "svc: expected sweep"); }', []),
        ("nested parens and commas in the condition",
         "src/svc/worker.cpp",
         'void f() { require(std::max(a, b) == f(c, d), "svc: ok"); }', []),
        ("multi-line concatenated message checks its first literal",
         "src/net/socket.cpp",
         'void f() {\n  require(ok,\n          "net: frame of " +\n'
         '          std::to_string(n));\n}', []),
        ("rand in library code",
         "src/sched/policy.cpp", "int f() { return rand(); }",
         ["rng-discipline"]),
        ("time() in library code",
         "src/svc/coordinator.cpp", "long f() { return time(nullptr); }",
         ["rng-discipline"]),
        ("steady_clock now is fine",
         "src/svc/coordinator.cpp",
         "auto f() { return std::chrono::steady_clock::now(); }", []),
        ("random_device in library code",
         "src/load/random.cpp", "std::random_device rd;",
         ["rng-discipline"]),
        ("rng.hpp itself is exempt",
         "src/util/rng.hpp",
         "#pragma once\nstd::random_device rd;  // seeding", []),
        ("random_device in a doc comment is fine",
         "src/sched/registry.hpp",
         "#pragma once\n// std::random_device would break replication\n",
         []),
        ("header without pragma once",
         "src/kibam/bank.hpp", "struct bank {};\n", ["pragma-once"]),
        ("cpp never needs pragma once",
         "src/kibam/bank.cpp", "int x;\n", []),
        ("version literal in its owner",
         "src/dist/codec.cpp", 'auto m = "bsched-shard v1";', []),
        ("version literal astray in src",
         "src/svc/worker.cpp", 'auto m = "bsched-sweep v1";',
         ["version-literal"]),
        ("version literal astray in tools",
         "tools/sweep_serve.cpp", 'auto m = "bsched-msg v1";',
         ["version-literal"]),
        ("tests may forge versions",
         "tests/test_dist.cpp", 'auto m = "bsched-shard v2";', []),
        ("version string mentioned in a comment is fine",
         "src/net/message.hpp",
         '#pragma once\n// the N of "bsched-msg vN"\n', []),
        ("telemetry version literal in its owner",
         "src/obs/telemetry.cpp", 'auto m = "bsched-telemetry v1";', []),
        ("telemetry version literal astray in src",
         "src/svc/worker.cpp", 'auto m = "bsched-telemetry v1";',
         ["version-literal"]),
        ("obs::detail outside src/obs",
         "src/api/engine.cpp",
         "void f() { static obs::detail::counter_handle h{\"x\"}; }",
         ["obs-discipline"]),
        ("qualified obs::detail in a tool",
         "tools/sweep_serve.cpp",
         "bsched::obs::detail::span s{t, \"x\"};", ["obs-discipline"]),
        ("obs::detail inside src/obs is the implementation",
         "src/obs/metrics.cpp", "obs::detail::counter_handle h{\"x\"};", []),
        ("obs macros at a call site are fine",
         "src/kibam/bank.cpp",
         'void f() { BSCHED_COUNTER_ADD("kibam.calls_total", 1); }', []),
        ("obs::detail in a comment is fine",
         "src/api/engine.cpp", "// never name obs::detail here\n", []),
        ("tests may poke obs::detail",
         "tests/test_obs.cpp", "obs::detail::span s{t, \"x\"};", []),
        ("raw std::thread in library code",
         "src/opt/search.cpp", "void f() { std::thread t{[] {}}; }",
         ["thread-discipline"]),
        ("std::jthread in library code",
         "src/sched/simulator.cpp", "void f() { std::jthread t{[] {}}; }",
         ["thread-discipline"]),
        ("std::async in library code",
         "src/svc/coordinator.cpp",
         "auto f() { return std::async([] {}); }",
         ["thread-discipline"]),
        ("task_pool may spawn",
         "src/util/task_pool.cpp",
         "void f() { std::vector<std::thread> pool; }", []),
        ("engine sweep pool may spawn",
         "src/api/engine.cpp",
         "void f() { std::vector<std::thread> pool; }", []),
        ("hardware_concurrency is not a spawn",
         "src/opt/search.cpp",
         "auto n = std::thread::hardware_concurrency();", []),
        ("std::thread in a comment is fine",
         "src/opt/search.cpp", "// never hold a raw std::thread here\n", []),
        ("tests may spawn threads",
         "tests/test_stress.cpp", "std::thread t{[] {}};", []),
    ]

    failures = 0
    for name, path, content, expected in cases:
        rel = path.replace("/", os.sep)
        got = rules(rel, content)
        if got != expected:
            print(f"self-test FAIL: {name}: expected {expected}, got {got}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"lint_bsched --self-test: {failures}/{len(cases)} failed",
              file=sys.stderr)
        return 1
    print(f"lint_bsched --self-test: OK ({len(cases)} cases)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."),
        help="repository root (default: the script's parent)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint's own unit tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings, count = lint_tree(os.path.abspath(args.root))
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint_bsched: {len(findings)} finding(s) in {count} files",
              file=sys.stderr)
        return 1
    print(f"lint_bsched: OK ({count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
