// Coordinator CLI of the fault-tolerant sweep service (src/svc): serves
// the replicated random-load demo grid (tools/sweep_common.hpp) to a
// fleet of `sweep_worker --connect` processes, survives worker crashes
// by re-leasing their item ranges, and writes the merged per-cell
// statistics — grid in, CSV out, same columns as scenario_sweep --csv.
//
//   $ ./sweep_serve [--replications R] [--port P] [--port-file PATH]
//                   [--workers-expected N] [--lease-timeout S]
//                   [--lease-items K] [--chunk C] [--deadline S]
//                   [--csv FILE] [--agg FILE] [--no-steal] [--quiet]
//                   [--metrics-out FILE] [--metrics-interval MS]
//
// --agg writes the merged aggregate in dist::codec form, so
// `sweep_merge --expect ref.csv served.agg` re-checks the service run
// against a single-process reference — the CI crash-recovery smoke.
//
// --metrics-out rewrites FILE with the fleet-wide "bsched-telemetry v1"
// exposition (coordinator counters/gauges, per-worker accepted-item
// totals, each worker's heartbeat-piggybacked snapshot) every
// --metrics-interval milliseconds (default 1000) and once on
// completion; `obs_report --metrics FILE` renders it as a table.
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as a line of text so scripts can discover it. --deadline is
// the hard wall-clock budget (seconds; 0 = unlimited) after which the
// coordinator gives up instead of waiting for workers that never come.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "dist/codec.hpp"
#include "dist/shard.hpp"
#include "obs/telemetry.hpp"
#include "svc/coordinator.hpp"
#include "sweep_common.hpp"
#include "util/error.hpp"

namespace {

double cli_seconds(const std::string& flag, const std::string& text) {
  try {
    std::size_t end = 0;
    const double v = std::stod(text, &end);
    if (end == text.size() && v >= 0) return v;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "%s: not a non-negative number of seconds: '%s'\n",
               flag.c_str(), text.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsched;

  std::size_t replications = 30;
  std::string csv_path;
  std::string agg_path;
  std::string port_file;
  std::string metrics_path;
  std::size_t metrics_interval_ms = 1000;
  svc::coordinator_options opts;
  opts.lease_timeout_s = 30.0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--replications") {
      replications = tools::cli_number(arg, value());
    } else if (arg == "--port") {
      const std::size_t port = tools::cli_number(arg, value());
      if (port > 65535) {
        std::fprintf(stderr, "sweep_serve: --port must be 0..65535\n");
        return 2;
      }
      opts.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--port-file") {
      port_file = value();
    } else if (arg == "--workers-expected") {
      opts.workers_expected = tools::cli_number(arg, value());
    } else if (arg == "--lease-timeout") {
      opts.lease_timeout_s = cli_seconds(arg, value());
    } else if (arg == "--lease-items") {
      opts.lease_items = tools::cli_number(arg, value());
    } else if (arg == "--chunk") {
      opts.chunk_items = tools::cli_number(arg, value());
    } else if (arg == "--deadline") {
      opts.deadline_s = cli_seconds(arg, value());
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--agg") {
      agg_path = value();
    } else if (arg == "--no-steal") {
      opts.steal = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics-out") {
      metrics_path = value();
    } else if (arg == "--metrics-interval") {
      metrics_interval_ms = tools::cli_number(arg, value());
    } else {
      std::fprintf(stderr,
                   "usage: sweep_serve [--replications R] [--port P] "
                   "[--port-file PATH] [--workers-expected N] "
                   "[--lease-timeout S] [--lease-items K] [--chunk C] "
                   "[--deadline S] [--csv FILE] [--agg FILE] [--no-steal] "
                   "[--quiet] [--metrics-out FILE] [--metrics-interval MS]"
                   "\n");
      return 2;
    }
  }
  if (replications == 0) {
    std::fprintf(stderr, "sweep_serve: --replications must be at least 1\n");
    return 2;
  }
  if (opts.workers_expected == 0) {
    std::fprintf(stderr,
                 "sweep_serve: --workers-expected must be at least 1\n");
    return 2;
  }
  if (opts.lease_timeout_s <= 0) {
    std::fprintf(stderr, "sweep_serve: --lease-timeout must be positive\n");
    return 2;
  }

  if (metrics_interval_ms == 0) {
    std::fprintf(stderr, "sweep_serve: --metrics-interval must be positive\n");
    return 2;
  }

  try {
    if (!quiet) opts.log = &std::cerr;
    if (!metrics_path.empty()) {
      opts.telemetry_interval_s =
          static_cast<double>(metrics_interval_ms) / 1000.0;
      opts.on_telemetry = [metrics_path](const obs::snapshot& snap) {
        // Rewrite in place each emission; readers see the latest
        // complete exposition (writes are small; last write wins).
        std::ofstream out{metrics_path, std::ios::trunc};
        if (!out.good()) {
          std::fprintf(stderr, "sweep_serve: cannot write %s\n",
                       metrics_path.c_str());
          return;
        }
        obs::encode_telemetry(snap, out);
      };
    }
    svc::coordinator coord{tools::demo_sweep(replications), std::move(opts)};
    std::fprintf(stderr, "sweep_serve: listening on port %u\n",
                 static_cast<unsigned>(coord.port()));
    if (!port_file.empty()) {
      std::ofstream out{port_file};
      out << coord.port() << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "sweep_serve: cannot write %s\n",
                     port_file.c_str());
        return 1;
      }
    }

    const dist::shard_aggregate merged = coord.run();
    const std::vector<api::cell_summary> cells = dist::summaries(merged);
    const svc::coordinator_counters& c = coord.counters();
    std::printf(
        "sweep service complete: %zu cells x %zu replications from %zu "
        "worker(s)\n%zu lease(s) folded, %zu expired, %zu re-queued on "
        "disconnect, %zu steal(s), %zu stale result(s) rejected\n\n",
        static_cast<std::size_t>(merged.grid_cells),
        static_cast<std::size_t>(merged.replications), c.workers_seen,
        c.results_accepted, c.expired, c.requeued_disconnect, c.steals,
        c.results_rejected);
    tools::print_summary_table(cells);
    if (!csv_path.empty()) tools::write_summary_csv(csv_path, cells);
    if (!agg_path.empty()) dist::write_file(merged, agg_path);
    return merged.stats.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_serve: %s\n", e.what());
    return 1;
  }
}
