// Renders src/obs artifacts as human-readable summary tables.
//
//   $ ./obs_report --metrics FILE           # "bsched-telemetry v1" file
//   $ ./obs_report --trace FILE [--top K]   # chrome-trace JSON export
//
// --metrics prints the counters, gauges and histograms of a telemetry
// exposition file (sweep_serve --metrics-out, or any encode_telemetry
// output). --trace aggregates a write_chrome_trace export by span name
// — call count, total/mean wall time — and prints the top K (default
// 20) by total time; it parses exactly the JSON shape our exporter
// writes (complete "X" events), not arbitrary chrome traces.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

struct span_agg {
  std::size_t count = 0;
  double total_us = 0;
};

double json_number(const std::string& text, std::size_t& pos,
                   const char* what) {
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
          text[end] == '-' || text[end] == '+' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E')) {
    ++end;
  }
  bsched::require(end > pos, std::string{"obs_report: malformed "} + what +
                                 " number in trace");
  const double v = std::stod(text.substr(pos, end - pos));
  pos = end;
  return v;
}

/// Aggregates the events of a write_chrome_trace document by name.
std::map<std::string, span_agg> parse_trace(const std::string& text) {
  std::map<std::string, span_agg> by_name;
  std::size_t pos = 0;
  const std::string name_key = "{\"name\":\"";
  while ((pos = text.find(name_key, pos)) != std::string::npos) {
    pos += name_key.size();
    std::string name;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;  // unescape
      name += text[pos++];
    }
    const std::size_t dur_pos = text.find("\"dur\":", pos);
    bsched::require(dur_pos != std::string::npos,
                    "obs_report: span without a dur field");
    std::size_t num = dur_pos + 6;
    const double dur_us = json_number(text, num, "dur");
    span_agg& agg = by_name[name];
    ++agg.count;
    agg.total_us += dur_us;
    pos = num;
  }
  return by_name;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  bsched::require(in.good(), "obs_report: cannot open " + path);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

int report_metrics(const std::string& path) {
  std::ifstream in{path};
  bsched::require(in.good(), "obs_report: cannot open " + path);
  const bsched::obs::snapshot snap = bsched::obs::decode_telemetry(in);

  if (!snap.counters.empty()) {
    bsched::text_table t{{"counter", "value"}};
    for (const auto& c : snap.counters) {
      t.row({c.name, std::to_string(c.value)});
    }
    std::printf("%s\n", t.str().c_str());
  }
  if (!snap.gauges.empty()) {
    bsched::text_table t{{"gauge", "value"}};
    for (const auto& g : snap.gauges) {
      t.row({g.name, bsched::format_double(g.value, 6)});
    }
    std::printf("%s\n", t.str().c_str());
  }
  if (!snap.histograms.empty()) {
    bsched::text_table t{{"histogram", "count", "sum", "mean", "buckets"}};
    for (const auto& h : snap.histograms) {
      const std::uint64_t n = h.count();
      std::string buckets;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (!buckets.empty()) buckets += ' ';
        const std::string le =
            i < h.bounds.size() ? bsched::format_double(h.bounds[i], 6)
                                : std::string{"inf"};
        buckets += "le=" + le + ":" + std::to_string(h.buckets[i]);
      }
      t.row({h.name, std::to_string(n), bsched::format_double(h.sum, 6),
             n > 0 ? bsched::format_double(h.sum / static_cast<double>(n), 6)
                   : "-",
             buckets});
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("%zu counter(s), %zu gauge(s), %zu histogram(s)\n",
              snap.counters.size(), snap.gauges.size(),
              snap.histograms.size());
  return 0;
}

int report_trace(const std::string& path, std::size_t top) {
  const std::map<std::string, span_agg> by_name = parse_trace(slurp(path));
  std::vector<std::pair<std::string, span_agg>> rows{by_name.begin(),
                                                     by_name.end()};
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  if (rows.size() > top) rows.resize(top);

  bsched::text_table t{{"span", "count", "total ms", "mean us"}};
  std::size_t events = 0;
  for (const auto& [name, agg] : rows) {
    events += agg.count;
    t.row({name, std::to_string(agg.count),
           bsched::format_double(agg.total_us / 1000.0, 3),
           bsched::format_double(
               agg.total_us / static_cast<double>(agg.count), 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("%zu span name(s), %zu event(s) shown\n", rows.size(), events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::size_t top = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--top") {
      try {
        top = std::stoul(value());
      } catch (const std::exception&) {
        top = 0;
      }
      if (top == 0) {
        std::fprintf(stderr, "obs_report: --top must be a positive count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: obs_report (--metrics FILE | --trace FILE) "
                   "[--top K]\n");
      return 2;
    }
  }
  if (metrics_path.empty() == trace_path.empty()) {
    std::fprintf(stderr,
                 "obs_report: pass exactly one of --metrics or --trace\n");
    return 2;
  }
  try {
    return metrics_path.empty() ? report_trace(trace_path, top)
                                : report_metrics(metrics_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_report: %s\n", e.what());
    return 1;
  }
}
