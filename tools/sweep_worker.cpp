// Worker of the distributed sweep pipeline, in one of two modes.
//
// File mode (the original shard pipeline): runs shard K of N of the
// replicated random-load demo grid (tools/sweep_common.hpp — the same
// grid examples/scenario_sweep evaluates) and emits the shard's
// mergeable per-cell aggregates through dist::codec.
//
//   $ ./sweep_worker --shard K --of N [--replications R] [--threads T]
//                    [--out FILE]
//
// The aggregate goes to FILE (or stdout with "-" / no --out; progress
// then moves to stderr). Feed N such files to sweep_merge to reproduce
// the single-process scenario_sweep statistics.
//
// Service mode: joins a sweep_serve coordinator, receives the sweep
// definition over the wire (no compiled-in grid — --replications is
// ignored) and runs leases until the campaign completes.
//
//   $ ./sweep_worker --connect HOST:PORT [--name NAME] [--threads T]
//                    [--quiet]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/engine.hpp"
#include "dist/codec.hpp"
#include "dist/shard.hpp"
#include "svc/worker.hpp"
#include "sweep_common.hpp"
#include "util/error.hpp"

namespace {

using namespace bsched;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sweep_worker --shard K --of N [--replications R] "
               "[--threads T] [--out FILE]\n"
               "       sweep_worker --connect HOST:PORT [--name NAME] "
               "[--threads T] [--quiet]\n");
  std::exit(2);
}

/// One-line argument diagnostics, applied up front in both modes —
/// before any grid is built or socket dialed.
[[noreturn]] void reject(const std::string& why) {
  std::fprintf(stderr, "sweep_worker: %s\n", why.c_str());
  std::exit(2);
}

struct connect_target {
  std::string host;
  std::uint16_t port = 0;
};

connect_target parse_connect(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    reject("--connect expects HOST:PORT, got '" + text + "'");
  }
  connect_target t;
  t.host = text.substr(0, colon);
  const std::size_t port =
      tools::cli_number("--connect port", text.substr(colon + 1));
  if (port == 0 || port > 65535) {
    reject("--connect port must be 1..65535, got '" + text.substr(colon + 1) +
           "'");
  }
  t.port = static_cast<std::uint16_t>(port);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t replications = 30;
  std::size_t n_threads = 0;
  std::string out_path = "-";
  std::string connect;
  std::string name = "worker";
  bool have_shard = false;
  bool have_of = false;
  bool have_out = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shard") {
      shard_index = tools::cli_number(arg, value());
      have_shard = true;
    } else if (arg == "--of") {
      shard_count = tools::cli_number(arg, value());
      have_of = true;
    } else if (arg == "--replications") {
      replications = tools::cli_number(arg, value());
    } else if (arg == "--threads") {
      n_threads = tools::cli_number(arg, value());
    } else if (arg == "--out") {
      out_path = value();
      have_out = true;
    } else if (arg == "--connect") {
      connect = value();
    } else if (arg == "--name") {
      name = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage();
    }
  }

  // Up-front validation, shared between the two modes: every rejected
  // combination dies here with a one-line diagnostic, before any work.
  if (!connect.empty()) {
    if (have_shard || have_of) {
      reject("--shard/--of are file-mode flags; the coordinator assigns "
             "ranges in --connect mode");
    }
    if (have_out) {
      reject("--out is a file-mode flag; results stream to the coordinator "
             "in --connect mode");
    }
  } else {
    if (!have_shard || !have_of) {
      reject("need --shard K --of N (or --connect HOST:PORT)");
    }
    if (shard_count == 0) reject("--of must be at least 1, got 0");
    if (shard_index >= shard_count) {
      reject("--shard must be below --of, got K=" +
             std::to_string(shard_index) + ", N=" +
             std::to_string(shard_count));
    }
    if (out_path.empty()) {
      reject("--out needs a non-empty path ('-' writes to stdout)");
    }
  }

  try {
    const api::engine engine;
    if (!connect.empty()) {
      const connect_target target = parse_connect(connect);
      svc::worker_options opts;
      opts.host = target.host;
      opts.port = target.port;
      opts.name = name;
      opts.n_threads = n_threads;
      if (!quiet) opts.log = &std::cerr;
      const svc::worker_report report = svc::run_worker(engine, opts);
      std::fprintf(stderr,
                   "sweep_worker: %s done — %zu lease(s) folded, %zu "
                   "rejected, %zu item(s), %zu trim(s)\n",
                   name.c_str(), report.leases, report.rejected, report.items,
                   report.trims);
      return 0;
    }

    const api::sweep sweep = tools::demo_sweep(replications);
    const dist::shard sh =
        dist::plan_shard(sweep, shard_index, shard_count);
    std::fprintf(stderr,
                 "sweep_worker: shard %zu/%zu — items [%zu, %zu) of %zu "
                 "(%zu cells x %zu replications)\n",
                 shard_index, shard_count, sh.first, sh.last,
                 sweep.cells.size() * sweep.replications,
                 sweep.cells.size(), sweep.replications);

    const dist::shard_aggregate agg =
        dist::run_shard(engine, sh, n_threads);
    if (out_path == "-") {
      dist::encode(agg, std::cout);
    } else {
      dist::write_file(agg, out_path);
      std::fprintf(stderr, "sweep_worker: wrote %s (%zu runs, %zu failures)\n",
                   out_path.c_str(), agg.stats.runs, agg.stats.failures);
    }
    return agg.stats.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
}
