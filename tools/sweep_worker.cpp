// Shard worker of the distributed sweep pipeline: runs shard K of N of
// the replicated random-load demo grid (tools/sweep_common.hpp — the
// same grid examples/scenario_sweep evaluates) and emits the shard's
// mergeable per-cell aggregates through dist::codec.
//
//   $ ./sweep_worker --shard K --of N [--replications R] [--threads T]
//                    [--out FILE]
//
// The aggregate goes to FILE (or stdout with "-" / no --out; progress
// then moves to stderr). Feed N such files to sweep_merge to reproduce
// the single-process scenario_sweep statistics.
#include <cstdio>
#include <iostream>
#include <string>

#include "api/engine.hpp"
#include "dist/codec.hpp"
#include "dist/shard.hpp"
#include "sweep_common.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace bsched;

  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t replications = 30;
  std::size_t n_threads = 0;
  std::string out_path = "-";
  bool have_shard = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shard") {
      shard_index = tools::cli_number(arg, value());
      have_shard = true;
    } else if (arg == "--of") {
      shard_count = tools::cli_number(arg, value());
    } else if (arg == "--replications") {
      replications = tools::cli_number(arg, value());
    } else if (arg == "--threads") {
      n_threads = tools::cli_number(arg, value());
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: sweep_worker --shard K --of N "
                   "[--replications R] [--threads T] [--out FILE]\n");
      return 2;
    }
  }
  if (!have_shard || shard_index >= shard_count) {
    std::fprintf(stderr,
                 "sweep_worker: need --shard K --of N with K < N "
                 "(got K=%zu, N=%zu)\n",
                 shard_index, shard_count);
    return 2;
  }

  try {
    const api::sweep sweep = tools::demo_sweep(replications);
    const dist::shard sh =
        dist::plan_shard(sweep, shard_index, shard_count);
    std::fprintf(stderr,
                 "sweep_worker: shard %zu/%zu — items [%zu, %zu) of %zu "
                 "(%zu cells x %zu replications)\n",
                 shard_index, shard_count, sh.first, sh.last,
                 sweep.cells.size() * sweep.replications,
                 sweep.cells.size(), sweep.replications);

    const api::engine engine;
    const dist::shard_aggregate agg =
        dist::run_shard(engine, sh, n_threads);
    if (out_path == "-") {
      dist::encode(agg, std::cout);
    } else {
      dist::write_file(agg, out_path);
      std::fprintf(stderr, "sweep_worker: wrote %s (%zu runs, %zu failures)\n",
                   out_path.c_str(), agg.stats.runs, agg.stats.failures);
    }
    return agg.stats.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
}
