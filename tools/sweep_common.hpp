// Shared pieces of the distributed-sweep CLI pipeline: the demo grid that
// examples/scenario_sweep, sweep_worker and sweep_merge all evaluate (so
// "worker x N -> merge" output is comparable against the single-process
// example), plus the common summary table / CSV rendering. The CSV
// column set is the contract the shard->merge CI smoke diffs against.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace bsched::tools {

/// The replicated random-load demo grid: five seeded random/markov
/// workloads x two policies on 2 x B1, base seed 2009 (DSN).
inline api::sweep demo_sweep(std::size_t replications) {
  std::vector<api::load_spec> loads;
  for (const char* text : {"random:count=40,p=0.3,seed=1",
                           "random:count=40,p=0.5,seed=2",
                           "random:count=40,p=0.8,seed=3",
                           "markov:count=40,p=0.7,seed=4",
                           "markov:count=40,p=0.9,seed=5"}) {
    loads.push_back(api::load_spec::parse(text));
  }
  api::sweep sweep;
  sweep.seed = 2009;  // DSN
  sweep.replications = replications;
  sweep.cells = api::cross({api::bank(2, kibam::battery_b1())}, loads,
                           {"round_robin", "best_of_n"},
                           {api::fidelity::discrete});
  return sweep;
}

/// Self-describing summary CSV columns (cell descriptors carried on the
/// row, so a CSV consumer never has to rebuild the grid).
inline std::vector<std::string> summary_csv_header() {
  return {"cell",       "label",      "load",     "policy",
          "fidelity",   "n",          "failures", "mean_min",
          "stddev_min", "ci95_min",   "min_min",  "max_min",
          "p10_min",    "p50_min",    "p90_min",  "p50_residual_amin",
          "cache_hits"};
}

inline std::vector<std::string> summary_csv_row(const api::cell_summary& c) {
  return {std::to_string(c.cell),
          c.label,
          c.load,
          c.policy,
          c.fidelity,
          std::to_string(c.n),
          std::to_string(c.failures),
          format_double(c.mean_min),
          format_double(c.stddev_min),
          format_double(c.ci95_min),
          format_double(c.min_min),
          format_double(c.max_min),
          format_double(c.p10_min),
          format_double(c.p50_min),
          format_double(c.p90_min),
          format_double(c.p50_residual_amin),
          std::to_string(c.cache_hits)};
}

inline void write_summary_csv(const std::string& path,
                              const std::vector<api::cell_summary>& cells) {
  csv_writer csv{path, summary_csv_header()};
  for (const api::cell_summary& c : cells) csv.row(summary_csv_row(c));
  std::printf("wrote %zu summary rows to %s\n", csv.rows_written(),
              path.c_str());
}

/// The per-cell statistics table scenario_sweep prints (and sweep_merge
/// reproduces from merged shard aggregates).
inline void print_summary_table(const std::vector<api::cell_summary>& cells) {
  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string{buf};
  };
  text_table table{{"cell", "n", "fail", "mean", "stddev", "ci95", "min",
                    "max", "p50", "cached"}};
  for (const api::cell_summary& c : cells) {
    table.row({c.label, std::to_string(c.n), std::to_string(c.failures),
               fmt(c.mean_min), fmt(c.stddev_min), fmt(c.ci95_min),
               fmt(c.min_min), fmt(c.max_min), fmt(c.p50_min),
               std::to_string(c.cache_hits)});
  }
  std::fputs(table.str().c_str(), stdout);
}

/// CLI helper: parses a non-negative integer argument or exits(2) naming
/// the flag. Rejects negative input instead of letting stoul wrap it.
inline std::size_t cli_number(const std::string& flag,
                              const std::string& text) {
  try {
    if (!text.empty() && text.front() >= '0' && text.front() <= '9') {
      std::size_t end = 0;
      const unsigned long v = std::stoul(text, &end);
      if (end == text.size()) return v;
    }
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "%s: not a non-negative number: '%s'\n", flag.c_str(),
               text.c_str());
  std::exit(2);
}

}  // namespace bsched::tools
