// Merge stage of the distributed sweep pipeline: folds shard aggregate
// files (sweep_worker output, dist::codec format) into the whole sweep's
// per-cell statistics and prints the same report examples/scenario_sweep
// prints for the single-process run.
//
//   $ ./sweep_merge [--csv FILE] [--expect REF.csv] shard0.agg shard1.agg ...
//
// Validation is strict: the shards must agree on the sweep shape and tile
// the (cell, replication) item stream exactly once. With --expect the
// merged summaries are compared against a reference CSV written by
// `scenario_sweep --csv` (the single-process run): cell descriptors,
// n/failures and min/max must match exactly; mean/stddev/CI/quantiles
// within ulp-scale tolerance (the Chan/Welford combine rounds differently
// than the sequential pass); per-process cache accounting is skipped.
// Exits non-zero on any mismatch, which is the CI equivalence smoke.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dist/codec.hpp"
#include "dist/shard.hpp"
#include "sweep_common.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace {

using namespace bsched;

/// Columns compared numerically with tolerance: derived moments, where
/// merge order legitimately moves the last ulps (plus the reference
/// CSV's 6-decimal rounding).
bool tolerance_column(const std::string& name) {
  return name == "mean_min" || name == "stddev_min" || name == "ci95_min";
}

/// Quantile columns are exact only while the cell's sketches kept every
/// sample; past the digest budget, merged and sequential compression
/// orders legitimately diverge, so the columns leave the equivalence
/// contract (README "Distributed sweeps") and are skipped.
bool quantile_column(const std::string& name) {
  return name == "p10_min" || name == "p50_min" || name == "p90_min" ||
         name == "p50_residual_amin";
}

/// Per-process accounting, excluded from the equivalence contract.
bool skipped_column(const std::string& name) { return name == "cache_hits"; }

bool check_against(const std::string& ref_path,
                   const std::vector<api::cell_summary>& cells) {
  std::ifstream in{ref_path};
  if (!in.good()) {
    std::fprintf(stderr, "sweep_merge: cannot open %s\n", ref_path.c_str());
    return false;
  }
  std::vector<std::vector<std::string>> ref;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ref.push_back(csv_parse_line(line));
  }
  const std::vector<std::string> header = tools::summary_csv_header();
  if (ref.empty() || ref.front() != header) {
    std::fprintf(stderr,
                 "sweep_merge: %s does not carry the expected summary "
                 "header\n",
                 ref_path.c_str());
    return false;
  }
  if (ref.size() - 1 != cells.size()) {
    std::fprintf(stderr,
                 "sweep_merge: %s has %zu rows, merged sweep has %zu "
                 "cells\n",
                 ref_path.c_str(), ref.size() - 1, cells.size());
    return false;
  }

  bool ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::vector<std::string> ours = tools::summary_csv_row(cells[i]);
    const std::vector<std::string>& theirs = ref[i + 1];
    if (theirs.size() != ours.size()) {
      std::fprintf(stderr, "sweep_merge: row %zu: field count mismatch\n",
                   i);
      ok = false;
      continue;
    }
    for (std::size_t col = 0; col < header.size(); ++col) {
      if (skipped_column(header[col])) continue;
      if (quantile_column(header[col]) &&
          cells[i].n > api::summary_digest_centroids) {
        continue;  // sketch compressed: quantiles are approximate
      }
      if (tolerance_column(header[col]) || quantile_column(header[col])) {
        const double a =
            parse_double(ours[col], "sweep_merge: merged " + header[col]);
        const double b =
            parse_double(theirs[col], "sweep_merge: reference " + header[col]);
        // 2e-6 absolute absorbs the reference CSV's 6-decimal rounding;
        // 1e-9 relative absorbs the merge-order ulps on large lifetimes.
        const double tol = 2e-6 + 1e-9 * std::max(std::fabs(a), std::fabs(b));
        if (std::fabs(a - b) <= tol) continue;
      } else if (theirs[col] == ours[col]) {
        continue;
      }
      std::fprintf(stderr,
                   "sweep_merge: row %zu (%s): %s mismatch — merged '%s' "
                   "vs reference '%s'\n",
                   i, cells[i].label.c_str(), header[col].c_str(),
                   ours[col].c_str(), theirs[col].c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string expect_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--expect") {
      expect_path = value();
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr,
                   "usage: sweep_merge [--csv FILE] [--expect REF.csv] "
                   "SHARD_FILE...\n");
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "sweep_merge: no shard aggregate files given\n");
    return 2;
  }

  try {
    std::vector<dist::shard_aggregate> parts;
    parts.reserve(inputs.size());
    for (const std::string& path : inputs) {
      parts.push_back(dist::read_file(path));
    }
    const dist::shard_aggregate merged = dist::merge_shards(std::move(parts));
    const std::vector<api::cell_summary> cells = dist::summaries(merged);

    std::printf(
        "merged %zu shard aggregates: %zu cells x %zu replications, "
        "base seed %llu\n\n",
        inputs.size(), merged.grid_cells, merged.replications,
        static_cast<unsigned long long>(merged.seed));
    tools::print_summary_table(cells);
    std::printf(
        "\nLifetimes in minutes; ci95 is the half-width of the normal 95%% "
        "confidence\ninterval, p50 the sketch median. %zu runs, %zu "
        "evaluated across shards, %zu\ncache hits (per-process), %zu "
        "failures.\n",
        merged.stats.runs, merged.stats.evaluated, merged.stats.cache_hits,
        merged.stats.failures);

    if (!csv_path.empty()) tools::write_summary_csv(csv_path, cells);

    if (!expect_path.empty()) {
      if (!check_against(expect_path, cells)) return 1;
      std::printf("merged aggregates match %s\n", expect_path.c_str());
    }
    return merged.stats.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.what());
    return 1;
  }
}
