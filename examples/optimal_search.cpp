// Optimal battery scheduling: compute the maximum-lifetime schedule for a
// test load, compare it with round robin, and verify it by replaying the
// decision list through the registry's "fixed" policy.
//
//   $ ./optimal_search [load-name]
//   $ ./optimal_search "ILs r1"
#include <cstdio>
#include <string>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "kibam/discrete.hpp"
#include "load/jobs.hpp"
#include "opt/search.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace bsched;
  load::test_load which = load::test_load::ils_alt;
  if (argc > 1) {
    for (const load::test_load l : load::all_test_loads()) {
      if (load::name(l) == argv[1]) which = l;
    }
  }

  const kibam::discretization disc{kibam::battery_b1()};
  const load::trace trace = load::paper_trace(which);
  std::printf("searching the optimal 2-battery schedule for %s ...\n",
              load::name(which).c_str());

  const opt::optimal_result best = opt::optimal_schedule(disc, 2, trace);
  std::printf("optimal lifetime: %.2f min\n", best.lifetime_min);
  std::printf("search: %llu nodes, %llu memo hits, %llu pruned, "
              "%llu memo entries\n",
              static_cast<unsigned long long>(best.stats.nodes),
              static_cast<unsigned long long>(best.stats.memo_hits),
              static_cast<unsigned long long>(best.stats.pruned),
              static_cast<unsigned long long>(best.stats.memo_entries));

  std::printf("decision sequence (battery per new_job event): ");
  for (const std::size_t b : best.decisions) std::printf("%zu", b + 1);
  std::printf("\n");

  // Replay through a scenario to double-check the schedule is real: the
  // decision list round-trips as a "fixed:decisions=..." policy spec.
  const api::engine engine;
  api::scenario scn{.label = {},
                    .batteries = api::bank(2, kibam::battery_b1()),
                    .load = which,
                    .policy = sched::fixed_spec(best.decisions),
                    .model = api::fidelity::discrete,
                    .steps = {},
                    .sim = {}};
  const api::run_result replay = engine.run(scn);
  std::printf("replayed lifetime: %.2f min (must match)\n",
              replay.sim.lifetime_min);

  scn.policy = "round_robin";
  const double rr_lifetime = engine.run(scn).sim.lifetime_min;
  std::printf("round robin:       %.2f min  (optimal is %+.1f%%)\n",
              rr_lifetime,
              100.0 * (best.lifetime_min - rr_lifetime) / rr_lifetime);

  // The other end of the spectrum: the provably worst schedule.
  scn.policy = "worst";
  const double worst = engine.run(scn).sim.lifetime_min;
  std::printf("worst possible:    %.2f min (the sequential discharge)\n",
              worst);
  return 0;
}
