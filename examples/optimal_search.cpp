// Optimal battery scheduling: compute the maximum-lifetime schedule for a
// test load, compare it with round robin, and verify it by replay.
//
//   $ ./optimal_search [load-name]
//   $ ./optimal_search "ILs r1"
#include <cstdio>
#include <string>

#include "kibam/discrete.hpp"
#include "load/jobs.hpp"
#include "opt/search.hpp"
#include "sched/policy.hpp"
#include "sched/simulator.hpp"

int main(int argc, char** argv) {
  using namespace bsched;
  load::test_load which = load::test_load::ils_alt;
  if (argc > 1) {
    for (const load::test_load l : load::all_test_loads()) {
      if (load::name(l) == argv[1]) which = l;
    }
  }

  const kibam::discretization disc{kibam::battery_b1()};
  const load::trace trace = load::paper_trace(which);
  std::printf("searching the optimal 2-battery schedule for %s ...\n",
              load::name(which).c_str());

  const opt::optimal_result best = opt::optimal_schedule(disc, 2, trace);
  std::printf("optimal lifetime: %.2f min\n", best.lifetime_min);
  std::printf("search: %llu nodes, %llu memo hits, %llu pruned, "
              "%llu memo entries\n",
              static_cast<unsigned long long>(best.stats.nodes),
              static_cast<unsigned long long>(best.stats.memo_hits),
              static_cast<unsigned long long>(best.stats.pruned),
              static_cast<unsigned long long>(best.stats.memo_entries));

  std::printf("decision sequence (battery per new_job event): ");
  for (const std::size_t b : best.decisions) std::printf("%zu", b + 1);
  std::printf("\n");

  // Replay through the simulator to double-check the schedule is real.
  const auto replay = sched::fixed_schedule(best.decisions);
  const sched::sim_result run =
      sched::simulate_discrete(disc, 2, trace, *replay);
  std::printf("replayed lifetime: %.2f min (must match)\n",
              run.lifetime_min);

  const auto rr = sched::round_robin();
  const double rr_lifetime =
      sched::simulate_discrete(disc, 2, trace, *rr).lifetime_min;
  std::printf("round robin:       %.2f min  (optimal is %+.1f%%)\n",
              rr_lifetime,
              100.0 * (best.lifetime_min - rr_lifetime) / rr_lifetime);

  // The other end of the spectrum: the provably worst schedule.
  const opt::optimal_result worst = opt::worst_schedule(disc, 2, trace);
  std::printf("worst possible:    %.2f min (the sequential discharge)\n",
              worst.lifetime_min);
  return 0;
}
