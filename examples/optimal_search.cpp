// Optimal battery scheduling through the scenario engine: compute the
// maximum-lifetime schedule for a test load, compare it with round robin
// and the provably worst schedule, then repeat on a mixed-capacity bank —
// everything, search statistics included, read off api::run_result.
//
//   $ ./optimal_search [load-name]
//   $ ./optimal_search "ILs r1"
#include <cstdio>
#include <string>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "load/jobs.hpp"

namespace {

void print_stats(const bsched::opt::search_stats& s) {
  std::printf("search: %llu nodes, %llu memo hits, %llu pruned, "
              "%llu memo entries\n",
              static_cast<unsigned long long>(s.nodes),
              static_cast<unsigned long long>(s.memo_hits),
              static_cast<unsigned long long>(s.pruned),
              static_cast<unsigned long long>(s.memo_entries));
}

void print_decisions(const bsched::api::run_result& r) {
  std::printf("decision sequence (battery per new_job event): ");
  for (const bsched::sched::decision& d : r.sim.decisions) {
    std::printf("%zu", d.battery + 1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsched;
  load::test_load which = load::test_load::ils_alt;
  if (argc > 1) {
    for (const load::test_load l : load::all_test_loads()) {
      if (load::name(l) == argv[1]) which = l;
    }
  }

  std::printf("searching the optimal 2-battery schedule for %s ...\n",
              load::name(which).c_str());

  const api::engine engine;
  api::scenario scn{.label = {},
                    .batteries = api::bank(2, kibam::battery_b1()),
                    .load = which,
                    .policy = "opt",
                    .model = api::fidelity::discrete,
                    .steps = {},
                    .sim = {}};
  const api::run_result best = engine.run(scn);
  std::printf("optimal lifetime: %.2f min\n", best.sim.lifetime_min);
  print_stats(best.search);
  print_decisions(best);

  scn.policy = "round_robin";
  const double rr_lifetime = engine.run(scn).sim.lifetime_min;
  std::printf("round robin:       %.2f min  (optimal is %+.1f%%)\n",
              rr_lifetime,
              100.0 * (best.sim.lifetime_min - rr_lifetime) / rr_lifetime);

  // The other end of the spectrum: the provably worst schedule.
  scn.policy = "worst";
  const double worst = engine.run(scn).sim.lifetime_min;
  std::printf("worst possible:    %.2f min (the sequential discharge)\n\n",
              worst);

  // The same search on a mixed-capacity bank — since the search runs on
  // per-battery discretizations, nothing requires the batteries to match.
  std::printf("and on a heterogeneous 5.5 + 4.0 A*min bank:\n");
  scn.batteries = {kibam::itsy_battery(5.5), kibam::itsy_battery(4.0)};
  scn.policy = "best_of_n";
  const double greedy = engine.run(scn).sim.lifetime_min;
  scn.policy = "opt";
  const api::run_result mixed = engine.run(scn);
  std::printf("greedy best-of-n:  %.2f min\n", greedy);
  std::printf("optimal lifetime:  %.2f min (%+.1f%%)\n",
              mixed.sim.lifetime_min,
              100.0 * (mixed.sim.lifetime_min - greedy) / greedy);
  print_stats(mixed.search);
  print_decisions(mixed);
  return 0;
}
