// Dual-battery scheduling: compare every scheduling policy on one of the
// paper's test loads (default: ILs alt, where the choice matters most).
//
//   $ ./dual_battery [load-name] [battery-count]
//   $ ./dual_battery "ILs alt" 3
//
// Prints the lifetime per policy and the schedule the best policy chose.
#include <cstdio>
#include <string>
#include <vector>

#include "kibam/discrete.hpp"
#include "load/jobs.hpp"
#include "sched/policy.hpp"
#include "sched/simulator.hpp"
#include "util/table.hpp"

namespace {

bsched::load::test_load parse_load(const std::string& name) {
  using bsched::load::test_load;
  for (const test_load l : bsched::load::all_test_loads()) {
    if (bsched::load::name(l) == name) return l;
  }
  std::fprintf(stderr, "unknown load '%s'; using ILs alt\n", name.c_str());
  return test_load::ils_alt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsched;
  const load::test_load which =
      argc > 1 ? parse_load(argv[1]) : load::test_load::ils_alt;
  const std::size_t batteries =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 2;

  const kibam::discretization disc{kibam::battery_b1()};
  const load::trace trace = load::paper_trace(which);
  std::printf("load %s on %zu x B1 batteries\n\n",
              load::name(which).c_str(), batteries);

  std::vector<std::unique_ptr<sched::policy>> policies;
  policies.push_back(sched::sequential());
  policies.push_back(sched::round_robin());
  policies.push_back(sched::best_of_n());
  policies.push_back(sched::random_choice(2009));

  text_table table{{"policy", "lifetime (min)", "residual (Amin)",
                    "decisions"}};
  double best_lifetime = 0;
  std::vector<sched::decision> best_decisions;
  std::string best_name;
  for (const auto& pol : policies) {
    const sched::sim_result r =
        sched::simulate_discrete(disc, batteries, trace, *pol);
    char lt[32], res[32];
    std::snprintf(lt, sizeof lt, "%.2f", r.lifetime_min);
    std::snprintf(res, sizeof res, "%.2f", r.residual_amin);
    table.row({pol->name(), lt, res, std::to_string(r.decisions.size())});
    if (r.lifetime_min > best_lifetime) {
      best_lifetime = r.lifetime_min;
      best_decisions = r.decisions;
      best_name = pol->name();
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nschedule chosen by '%s':\n", best_name.c_str());
  for (const sched::decision& d : best_decisions) {
    std::printf("  t=%6.2f  job %zu -> battery %zu%s\n", d.time_min,
                d.job_index + 1, d.battery + 1,
                d.handover ? "  (hand-over: predecessor died)" : "");
  }
  return 0;
}
