// Dual-battery scheduling: compare every scheduling policy on one of the
// paper's test loads (default: ILs alt, where the choice matters most).
// Policies are named through the string registry and the comparison runs
// as one scenario batch.
//
//   $ ./dual_battery [load-name] [battery-count]
//   $ ./dual_battery "ILs alt" 3
//
// Prints the lifetime per policy and the schedule the best policy chose.
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "load/jobs.hpp"
#include "util/table.hpp"

namespace {

bsched::load::test_load parse_load(const std::string& name) {
  using bsched::load::test_load;
  for (const test_load l : bsched::load::all_test_loads()) {
    if (bsched::load::name(l) == name) return l;
  }
  std::fprintf(stderr, "unknown load '%s'; using ILs alt\n", name.c_str());
  return test_load::ils_alt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsched;
  const load::test_load which =
      argc > 1 ? parse_load(argv[1]) : load::test_load::ils_alt;
  const std::size_t batteries =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 2;

  std::printf("load %s on %zu x B1 batteries\n\n",
              load::name(which).c_str(), batteries);

  const std::vector<std::string> policies{
      "sequential", "round_robin", "best_of_n", "random:seed=2009"};
  const std::vector<api::scenario> sweep =
      api::cross({api::bank(batteries, kibam::battery_b1())}, {which},
                 policies, {api::fidelity::discrete});

  const api::engine engine;
  const std::vector<api::run_result> results = engine.run_batch(sweep);

  text_table table{{"policy", "lifetime (min)", "residual (Amin)",
                    "decisions"}};
  double best_lifetime = 0;
  std::vector<sched::decision> best_decisions;
  std::string best_name;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const api::run_result& r = results[i];
    if (!r.ok()) {
      std::fprintf(stderr, "scenario '%s' failed: %s\n",
                   sweep[i].describe().c_str(), r.error.c_str());
      return 1;
    }
    char lt[32], res[32];
    std::snprintf(lt, sizeof lt, "%.2f", r.sim.lifetime_min);
    std::snprintf(res, sizeof res, "%.2f", r.sim.residual_amin);
    table.row({r.policy_name, lt, res,
               std::to_string(r.sim.decisions.size())});
    if (r.sim.lifetime_min > best_lifetime) {
      best_lifetime = r.sim.lifetime_min;
      best_decisions = r.sim.decisions;
      best_name = r.policy_name;
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nschedule chosen by '%s':\n", best_name.c_str());
  for (const sched::decision& d : best_decisions) {
    std::printf("  t=%6.2f  job %zu -> battery %zu%s\n", d.time_min,
                d.job_index + 1, d.battery + 1,
                d.handover ? "  (hand-over: predecessor died)" : "");
  }
  return 0;
}
