// Quickstart: model a battery, apply a load, compute lifetimes — first
// with the core models, then through the scenario API that the rest of
// the library (experiments, benches, sweeps) is built on.
//
//   $ ./quickstart
#include <cstdio>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "kibam/discrete.hpp"
#include "kibam/kibam.hpp"
#include "load/jobs.hpp"

int main() {
  using namespace bsched;

  // 1. A battery: the Itsy pocket computer's Li-ion cell (5.5 Amin).
  const kibam::battery_parameters battery = kibam::battery_b1();
  std::printf("battery: C = %.1f Amin, c = %.3f, k' = %.3f/min\n",
              battery.capacity_amin, battery.c, battery.k_prime);

  // 2. A load: 1-minute jobs at 500 mA with 1-minute idle gaps.
  load::job_sequence jobs;
  jobs.currents = {load::high_current_a};
  jobs.idle_min = 1.0;
  const load::trace trace = jobs.to_trace();

  // 3a. Lifetime under the analytic Kinetic Battery Model.
  const double analytic = kibam::lifetime(battery, trace);
  std::printf("analytic KiBaM lifetime:   %.2f min\n", analytic);

  // 3b. The same under the discretized model the paper's timed automata
  //     use (0.01-minute steps, 0.01-Amin charge units).
  const kibam::discretization disc{battery};
  const double discrete = kibam::discrete_lifetime(disc, trace);
  std::printf("discretized (dKiBaM):      %.2f min\n", discrete);

  // 4. Multi-battery systems run through declarative scenarios: a bank, a
  //    load, a policy name and a model fidelity describe one experiment.
  const api::engine engine;
  for (const char* policy : {"sequential", "round_robin", "best_of_n"}) {
    const api::scenario scn{.label = {},
                            .batteries = api::bank(2, battery),
                            .load = trace,
                            .policy = policy,
                            .model = api::fidelity::discrete,
                            .steps = {},
                            .sim = {}};
    const api::run_result r = engine.run(scn);
    std::printf("2 x B1, policy %-12s  lifetime %.2f min (%zu decisions)\n",
                policy, r.sim.lifetime_min, r.sim.decisions.size());
  }

  // 5. Peek inside: charge state after the first job.
  kibam::state s = kibam::full(battery);
  s = kibam::advance(battery, s, load::high_current_a, 1.0);
  std::printf("after one job:  total %.2f Amin, available %.2f Amin\n",
              s.gamma, kibam::available_charge(battery, s));
  s = kibam::advance(battery, s, 0.0, 1.0);  // idle minute: recovery
  std::printf("after one idle: total %.2f Amin, available %.2f Amin "
              "(recovery effect)\n",
              s.gamma, kibam::available_charge(battery, s));
  return 0;
}
