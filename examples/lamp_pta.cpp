// The lamp of Section 3, built on the bsched::pta engine: a network of two
// timed automata (lamp + user) with a binary channel, invariants, cost
// rates and a cost update — the same ingredients the TA-KiBaM uses.
//
//   $ ./lamp_pta
//
// Computes the cheapest way to have shone brightly and be off again, and
// shows the witness run (cf. Figure 4 of the paper).
#include <cstdio>

#include "pta/mcr.hpp"
#include "pta/model.hpp"
#include "pta/zonegraph.hpp"

int main() {
  using namespace bsched::pta;

  network net;
  const clock_id y = net.add_clock("y", 11);
  const chan_id press = net.add_channel("press");
  const var_ref brights = net.add_var("brights", 0);

  const automaton_id lamp_id = net.add_automaton("lamp");
  automaton& lamp = net.at(lamp_id);
  const loc_id off = lamp.add_location({"off", false, {}, {}});
  // Burning costs energy: rate 10 in low, 20 in bright (Figure 4), and
  // the lamp switches itself off after 10 time units (Figure 3).
  const loc_id low = lamp.add_location(
      {"low", false, {clock_constraint{y, cmp::le, lit(10)}}, lit(10)});
  const loc_id bright = lamp.add_location(
      {"bright", false, {clock_constraint{y, cmp::le, lit(10)}}, lit(20)});
  lamp.set_initial(off);
  lamp.add_edge({off, low, {}, {}, press, sync_dir::receive, {}, {y}, {},
                 lit(50)});  // switching on costs 50
  lamp.add_edge({low, bright, {clock_constraint{y, cmp::lt, lit(5)}}, {},
                 press, sync_dir::receive,
                 {{brights.lv(), expr{brights} + lit(1)}}, {}, {}, {}});
  lamp.add_edge({low, off, {clock_constraint{y, cmp::ge, lit(5)}}, {},
                 press, sync_dir::receive, {}, {}, {}, {}});
  lamp.add_edge({low, off, {clock_constraint{y, cmp::ge, lit(10)}}, {},
                 npos, sync_dir::none, {}, {}, {}, {}});
  lamp.add_edge({bright, off, {clock_constraint{y, cmp::ge, lit(10)}}, {},
                 npos, sync_dir::none, {}, {}, {}, {}});

  const automaton_id user_id = net.add_automaton("user");
  automaton& user = net.at(user_id);
  const loc_id idle = user.add_location({"idle", false, {}, {}});
  user.set_initial(idle);
  user.add_edge({idle, idle, {}, {}, press, sync_dir::send, {}, {}, {}, {}});

  // Dense-time sanity check first: bright is reachable at all.
  const zg_result dense = symbolic_reach(
      net, [&](std::span<const std::uint32_t> locs,
               std::span<const std::int64_t>) {
        return locs[lamp_id] == bright;
      });
  std::printf("dense-time reachability of 'bright': %s (%llu zones)\n",
              dense.reachable ? "yes" : "no",
              static_cast<unsigned long long>(dense.stored));

  // Cost-optimal schedule: shine brightly once, end with the lamp off.
  const semantics sem{net};
  const std::size_t brights_slot = brights.slot;
  const auto result = min_cost_reach(sem, [=](const dstate& s) {
    return s.locations[lamp_id] == off && s.vars[brights_slot] >= 1;
  });
  if (!result) {
    std::printf("goal unreachable\n");
    return 1;
  }
  std::printf(
      "cheapest 'shone brightly and off again': cost %lld in %lld time "
      "units\n",
      static_cast<long long>(result->cost),
      static_cast<long long>(result->elapsed_steps));
  std::printf("witness run (the energy-optimal usage pattern):\n");
  for (const trace_step& step : result->trace) {
    std::printf("  %-55s +%lld time, +%lld cost\n", step.description.c_str(),
                static_cast<long long>(step.delay),
                static_cast<long long>(step.cost));
  }
  std::printf(
      "\nNote the shape: the optimum burns the mandatory waiting time in "
      "the cheap\n'low' location (rate 10) and enters 'bright' (rate 20) "
      "as late as the y < 5\nguard allows — the same \"schedule around "
      "the expensive state\" structure the\nbattery scheduler exploits.\n");
  return 0;
}
