// Sensor-node duty cycling — the paper's outlook (Section 7): "For a
// device with one battery and a given workload, we want to know how to
// schedule the jobs over time to optimize the battery lifetime."
//
// A sensor node runs 1-minute measurements at 250 mA and is free to choose
// the idle gap between consecutive measurements. Longer gaps let the bound
// charge refill the available well (recovery effect), so the node finishes
// *more* measurements in total — but at a lower rate. This example sweeps
// the gap as a batch of scenarios and shows the trade-off a designer
// actually faces.
//
//   $ ./sensor_node
#include <cstdio>
#include <vector>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "load/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace bsched;

load::trace duty_cycle(double gap_min) {
  std::vector<load::epoch> cycle;
  cycle.push_back({1.0, 0.25});  // the measurement job
  if (gap_min > 0) cycle.push_back({gap_min, 0.0});
  return load::trace{std::move(cycle)};
}

}  // namespace

int main() {
  const kibam::battery_parameters battery = kibam::battery_b1();
  std::printf(
      "sensor node on one B1 battery: 1-min measurements at 250 mA with a\n"
      "configurable idle gap. How should the node space its work?\n\n");

  const std::vector<double> gaps{0.0, 1.0, 2.0, 4.0, 6.0, 8.0};
  std::vector<api::scenario> sweep;
  for (const double gap : gaps) {
    sweep.push_back({.label = {},
                     .batteries = api::bank(1, battery),
                     .load = duty_cycle(gap),
                     .policy = "sequential",
                     .model = api::fidelity::continuous,
                     .steps = {},
                     .sim = {}});
  }
  const api::engine engine;
  const std::vector<api::run_result> results = engine.run_batch(sweep);

  text_table table{{"gap (min)", "lifetime (min)", "measurements",
                    "charge delivered (Amin)", "rate (jobs/h)"}};
  int base_jobs = 0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const double gap = gaps[i];
    if (!results[i].ok()) {
      std::fprintf(stderr, "gap %.0f failed: %s\n", gap,
                   results[i].error.c_str());
      return 1;
    }
    const double lifetime = results[i].sim.lifetime_min;
    // Job k occupies [k (1+gap), k (1+gap) + 1); count completed ones.
    const double period = 1.0 + gap;
    int jobs = 0;
    while (static_cast<double>(jobs) * period + 1.0 <= lifetime + 1e-9) {
      ++jobs;
    }
    if (gap == 0.0) base_jobs = jobs;
    char g[16], lt[16], q[16], rate[16];
    std::snprintf(g, sizeof g, "%.0f", gap);
    std::snprintf(lt, sizeof lt, "%.2f", lifetime);
    std::snprintf(q, sizeof q, "%.2f", 0.25 * jobs);
    std::snprintf(rate, sizeof rate, "%.1f", 60.0 * jobs / lifetime);
    table.row({g, lt, std::to_string(jobs), q, rate});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nBack-to-back measurements complete only %d jobs before the "
      "available\ncharge well runs dry; spacing them out converts bound "
      "charge into extra\nmeasurements — the recovery effect of Section 2 "
      "— at the cost of rate.\nA deployment picks the smallest gap that "
      "meets its measurement budget.\n",
      base_jobs);
  return 0;
}
