// A replicated random-load sweep through engine::run_sweep: ten cells
// (five seeded random/markov workloads x two policies on 2 x B1), each
// evaluated `--replications` times with derived per-(cell, replication)
// seeds, streamed into the api::summarize sink.
//
//   $ ./scenario_sweep [--threads N] [--replications R] [--csv FILE]
//
// Prints one row per cell with the lifetime distribution statistics
// (n, mean, stddev, 95% CI, min/max, cache hits) and cross-checks the
// multi-threaded sweep against a single-threaded run, summary for
// summary — the aggregates must be byte-identical whatever the thread
// count. With --csv the same columns are written through util/csv, so a
// full sweep is reproducible and plottable from the command line.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bsched;

  std::size_t n_threads = 8;
  std::size_t replications = 30;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto number = [&](const std::string& text) -> std::size_t {
      try {
        std::size_t end = 0;
        const unsigned long v = std::stoul(text, &end);
        if (end == text.size()) return v;
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s: not a number: '%s'\n", arg.c_str(),
                   text.c_str());
      std::exit(2);
    };
    if (arg == "--threads") {
      n_threads = number(value());
    } else if (arg == "--replications") {
      replications = number(value());
    } else if (arg == "--csv") {
      csv_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: scenario_sweep [--threads N] "
                   "[--replications R] [--csv FILE]\n");
      return 2;
    }
  }

  std::vector<api::load_spec> loads;
  for (const char* text : {"random:count=40,p=0.3,seed=1",
                           "random:count=40,p=0.5,seed=2",
                           "random:count=40,p=0.8,seed=3",
                           "markov:count=40,p=0.7,seed=4",
                           "markov:count=40,p=0.9,seed=5"}) {
    loads.push_back(api::load_spec::parse(text));
  }
  api::sweep sweep;
  sweep.seed = 2009;  // DSN
  sweep.replications = replications;
  sweep.cells = api::cross({api::bank(2, kibam::battery_b1())}, loads,
                           {"round_robin", "best_of_n"},
                           {api::fidelity::discrete});
  std::printf(
      "sweep: %zu cells (2 x B1, random/markov loads x round_robin/"
      "best_of_n)\n       x %zu replications = %zu runs, %zu threads, "
      "base seed %llu\n\n",
      sweep.cells.size(), sweep.replications,
      sweep.cells.size() * sweep.replications, n_threads,
      static_cast<unsigned long long>(sweep.seed));

  const api::engine engine;
  api::summarize sink{sweep};
  const api::sweep_stats stats = engine.run_sweep(sweep, sink, n_threads);

  // The determinism contract, demonstrated: a single-threaded run must
  // produce byte-identical summaries and stats.
  api::summarize reference{sweep};
  const api::sweep_stats ref_stats = engine.run_sweep(sweep, reference, 1);
  const bool deterministic =
      sink.cells() == reference.cells() && stats == ref_stats;

  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string{buf};
  };
  text_table table{{"cell", "n", "fail", "mean", "stddev", "ci95", "min",
                    "max", "cached"}};
  for (const api::cell_summary& c : sink.cells()) {
    table.row({c.label, std::to_string(c.n), std::to_string(c.failures),
               fmt(c.mean_min), fmt(c.stddev_min), fmt(c.ci95_min),
               fmt(c.min_min), fmt(c.max_min),
               std::to_string(c.cache_hits)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nLifetimes in minutes; ci95 is the half-width of the normal 95%% "
      "confidence\ninterval. %zu runs, %zu distinct cells evaluated, %zu "
      "cache hits, %zu failures.\n%zu-thread sweep vs single-threaded "
      "reference: %s.\n",
      stats.runs, stats.evaluated, stats.cache_hits, stats.failures,
      n_threads, deterministic ? "byte-identical" : "MISMATCH");

  if (!csv_path.empty()) {
    csv_writer csv{csv_path,
                   {"cell", "label", "n", "failures", "mean_min",
                    "stddev_min", "ci95_min", "min_min", "max_min",
                    "cache_hits"}};
    for (const api::cell_summary& c : sink.cells()) {
      csv.row({std::to_string(c.cell), c.label, std::to_string(c.n),
               std::to_string(c.failures), format_double(c.mean_min),
               format_double(c.stddev_min), format_double(c.ci95_min),
               format_double(c.min_min), format_double(c.max_min),
               std::to_string(c.cache_hits)});
    }
    std::printf("wrote %zu summary rows to %s\n", csv.rows_written(),
                csv_path.c_str());
  }
  return deterministic && stats.failures == 0 ? 0 : 1;
}
