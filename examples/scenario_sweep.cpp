// A replicated random-load sweep through engine::run_sweep: ten cells
// (five seeded random/markov workloads x two policies on 2 x B1), each
// evaluated `--replications` times with derived per-(cell, replication)
// seeds, streamed into the api::summarize sink. The grid and the report
// live in tools/sweep_common.hpp, shared with the distributed pipeline
// (sweep_worker / sweep_merge), so a sharded run merges back into
// exactly this report.
//
//   $ ./scenario_sweep [--threads N] [--replications R] [--csv FILE]
//                      [--trace FILE]
//
// Prints one row per cell with the lifetime distribution statistics
// (n, mean, stddev, 95% CI, min/max, sketch median, cache hits) and
// cross-checks the multi-threaded sweep against a single-threaded run,
// summary for summary — the aggregates must be byte-identical whatever
// the thread count. With --csv the same statistics are written through
// util/csv with self-describing scenario columns (label/load/policy/
// fidelity), so a full sweep is reproducible and plottable from the
// command line — and serves as the reference for `sweep_merge --expect`.
// With --trace the first (multi-threaded) sweep runs under the global
// tracer and its spans are exported as chrome://tracing JSON — empty
// when the build has BSCHED_OBS=OFF, since the span macros compile away.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "../tools/sweep_common.hpp"
#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace bsched;

  std::size_t n_threads = 8;
  std::size_t replications = 30;
  std::string csv_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      n_threads = tools::cli_number(arg, value());
    } else if (arg == "--replications") {
      replications = tools::cli_number(arg, value());
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: scenario_sweep [--threads N] "
                   "[--replications R] [--csv FILE] [--trace FILE]\n");
      return 2;
    }
  }

  const api::sweep sweep = tools::demo_sweep(replications);
  std::printf(
      "sweep: %zu cells (2 x B1, random/markov loads x round_robin/"
      "best_of_n)\n       x %zu replications = %zu runs, %zu threads, "
      "base seed %llu\n\n",
      sweep.cells.size(), sweep.replications,
      sweep.cells.size() * sweep.replications, n_threads,
      static_cast<unsigned long long>(sweep.seed));

  const api::engine engine;
  api::summarize sink{sweep};
  if (!trace_path.empty()) obs::tracer::global().enable(true);
  const api::sweep_stats stats = engine.run_sweep(sweep, sink, n_threads);
  if (!trace_path.empty()) {
    obs::tracer::global().enable(false);
    std::ofstream out{trace_path};
    if (!out.good()) {
      std::fprintf(stderr, "scenario_sweep: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    obs::write_chrome_trace(obs::tracer::global().drain(), out);
  }

  // The determinism contract, demonstrated: a single-threaded run must
  // produce byte-identical summaries and stats.
  api::summarize reference{sweep};
  const api::sweep_stats ref_stats = engine.run_sweep(sweep, reference, 1);
  const bool deterministic =
      sink.cells() == reference.cells() && stats == ref_stats;

  tools::print_summary_table(sink.cells());
  std::printf(
      "\nLifetimes in minutes; ci95 is the half-width of the normal 95%% "
      "confidence\ninterval, p50 the sketch median. %zu runs, %zu distinct "
      "cells evaluated, %zu\ncache hits, %zu failures.\n%zu-thread sweep vs "
      "single-threaded reference: %s.\n",
      stats.runs, stats.evaluated, stats.cache_hits, stats.failures,
      n_threads, deterministic ? "byte-identical" : "MISMATCH");

  if (!csv_path.empty()) tools::write_summary_csv(csv_path, sink.cells());
  return deterministic && stats.failures == 0 ? 0 : 1;
}
