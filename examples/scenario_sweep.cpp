// A Table-5-style evaluation sweep as data: 2 batteries x all ten test
// loads x three scheduling policies x both model fidelities, built with
// api::cross and executed through engine::run_batch on a worker pool.
//
//   $ ./scenario_sweep [n_threads]
//
// Prints one row per load with the lifetime of every policy/fidelity cell
// and cross-checks the multi-threaded batch against a single-threaded run,
// result for result.
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bsched;
  const std::size_t n_threads =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 8;

  const std::vector<std::string> policies{"sequential", "round_robin",
                                          "best_of_n"};
  const std::vector<api::fidelity> fidelities{api::fidelity::discrete,
                                              api::fidelity::continuous};
  std::vector<api::load_spec> loads;
  for (const load::test_load l : load::all_test_loads()) {
    loads.emplace_back(l);
  }
  const std::vector<api::scenario> sweep = api::cross(
      {api::bank(2, kibam::battery_b1())}, loads, policies, fidelities);
  std::printf(
      "sweep: %zu scenarios (2 x B1, %zu loads, %zu policies, "
      "%zu fidelities), %zu threads\n\n",
      sweep.size(), loads.size(), policies.size(), fidelities.size(),
      n_threads);

  const api::engine engine;
  const std::vector<api::run_result> results =
      engine.run_batch(sweep, n_threads);
  const std::vector<api::run_result> reference = engine.run_batch(sweep, 1);

  text_table table{{"test load", "seq (d)", "seq (c)", "rr (d)", "rr (c)",
                    "b2 (d)", "b2 (c)"}};
  // cross() emits fidelities innermost, policies next: for each load the
  // six cells are contiguous.
  const std::size_t cells = policies.size() * fidelities.size();
  std::size_t failures = 0;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::vector<std::string> row{loads[l].describe()};
    for (std::size_t c = 0; c < cells; ++c) {
      const api::run_result& r = results[l * cells + c];
      if (!r.ok()) {
        ++failures;
        std::fprintf(stderr, "scenario '%s' failed: %s\n",
                     sweep[l * cells + c].describe().c_str(),
                     r.error.c_str());
        row.push_back("error");
        continue;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", r.sim.lifetime_min);
      row.push_back(buf);
    }
    table.row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!(results[i] == reference[i])) ++mismatches;
  }
  std::printf(
      "\n%zu-thread batch vs single-threaded reference: %zu mismatches "
      "(scenarios are self-seeded, so batches are deterministic); "
      "%zu failed scenarios.\n",
      n_threads, mismatches, failures);
  return mismatches == 0 && failures == 0 ? 0 : 1;
}
